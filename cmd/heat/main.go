// Command heat runs the Gauss–Seidel heat-equation benchmark (§VI-A) on
// the simulated cluster and reports the modelled throughput.
//
// Example:
//
//	heat -variant tagaspi -nodes 8 -rows 2048 -cols 2048 -steps 10 -block 64
//	heat -variant mpi -nodes 4 -verify
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/heat"
	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/obscli"
)

func main() {
	variant := flag.String("variant", "tagaspi", "mpi | tampi | tagaspi")
	nodes := flag.Int("nodes", 4, "compute nodes")
	rpn := flag.Int("rpn", 2, "ranks per node (hybrid variants)")
	cores := flag.Int("cores", 4, "cores per rank (hybrid variants)")
	mpiRPN := flag.Int("mpi-rpn", 8, "ranks per node (mpi variant)")
	rows := flag.Int("rows", 1024, "matrix rows")
	cols := flag.Int("cols", 2048, "matrix columns")
	steps := flag.Int("steps", 10, "timesteps")
	block := flag.Int("block", 64, "block size (hybrid: square; mpi: columns)")
	profile := flag.String("profile", "omnipath", "omnipath | infiniband | ideal")
	poll := flag.Duration("poll", 10*time.Microsecond, "task-aware polling period")
	verify := flag.Bool("verify", false, "run real arithmetic and check against the serial reference")
	ofl := obscli.Register()
	flag.Parse()

	var prof fabric.Profile
	switch *profile {
	case "omnipath":
		prof = fabric.ProfileOmniPath()
	case "infiniband":
		prof = fabric.ProfileInfiniBand()
	case "ideal":
		prof = fabric.ProfileIdeal()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}

	p := heat.Params{
		Rows: *rows, Cols: *cols, Timesteps: *steps,
		BlockRows: *block, BlockCols: *block, Verify: *verify,
	}
	cfg := cluster.Config{Nodes: *nodes, Profile: prof, Seed: 1}
	switch *variant {
	case "mpi":
		cfg.RanksPerNode, cfg.CoresPerRank = *mpiRPN, 1
		p.BlockCols = *block
	case "tampi":
		cfg.RanksPerNode, cfg.CoresPerRank = *rpn, *cores
		cfg.WithTasking, cfg.WithTAMPI = true, true
		cfg.TAMPIPoll = *poll
	case "tagaspi":
		cfg.RanksPerNode, cfg.CoresPerRank = *rpn, *cores
		cfg.WithTasking, cfg.WithTAGASPI = true, true
		cfg.TAGASPIPoll = *poll
	default:
		fmt.Fprintf(os.Stderr, "unknown variant %q\n", *variant)
		os.Exit(2)
	}

	col := ofl.Collector(*nodes * cfg.RanksPerNode)
	if col != nil {
		cfg.Recorder = col
	}

	start := time.Now()
	res := cluster.Run(cfg, func(env *cluster.Env) {
		switch *variant {
		case "mpi":
			heat.RunMPIOnly(env, p)
		case "tampi":
			heat.RunTAMPI(env, p)
		case "tagaspi":
			heat.RunTAGASPI(env, p)
		}
	})
	fmt.Printf("variant=%s nodes=%d ranks=%d matrix=%dx%d steps=%d block=%d profile=%s\n",
		*variant, *nodes, *nodes*cfg.RanksPerNode, *rows, *cols, *steps, *block, prof.Name)
	fmt.Printf("modelled time: %v   throughput: %.3f GUpdates/s   (host %v)\n",
		res.Elapsed, p.Updates()/res.Elapsed.Seconds()/1e9, time.Since(start).Round(time.Millisecond))
	fmt.Printf("fabric: %d messages, %.1f MiB;  MPI time (all ranks): %v\n",
		res.Fabric.Messages, float64(res.Fabric.Bytes)/(1<<20), res.TotalMPITime())
	if *verify {
		fmt.Println("verify: arithmetic ran inside the simulation; use the test suite for the bit-exact check")
	}
	if err := ofl.Finish(os.Stdout, col, res); err != nil {
		fmt.Fprintf(os.Stderr, "observability output: %v\n", err)
		os.Exit(1)
	}
}
