// Command figures regenerates the paper's evaluation figures (§VI) on the
// simulated cluster, printing each as a text table.
//
// Usage:
//
//	figures -fig 9          # one figure (9, 10, 11, 12, 13a, 13b,
//	                        # lock, poll, rma, onready)
//	figures -all            # everything, in paper order
//	figures -all -quick     # reduced scale (seconds instead of minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "", "figure id to regenerate")
	all := flag.Bool("all", false, "regenerate every figure")
	quick := flag.Bool("quick", false, "use the reduced Quick preset")
	flag.Parse()

	preset := figures.Full
	if *quick {
		preset = figures.Quick
	}
	gens := figures.All()
	var ids []string
	switch {
	case *all:
		ids = figures.IDs()
	case *fig != "":
		if _, ok := gens[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %q; known: %v\n", *fig, figures.IDs())
			os.Exit(2)
		}
		ids = []string{*fig}
	default:
		flag.Usage()
		os.Exit(2)
	}
	for _, id := range ids {
		start := time.Now()
		f := gens[id](preset)
		f.Render(os.Stdout)
		fmt.Printf("   (host time: %v)\n\n", time.Since(start).Round(time.Millisecond))
	}
}
