// Command figures regenerates the paper's evaluation figures (§VI) on the
// simulated cluster, printing each as a text table. Figures are declarative
// sweeps of independent simulation points (internal/exp); points run
// host-parallel on a bounded worker pool, and modelled results are
// identical at any worker count.
//
// Usage:
//
//	figures -fig 9            # one figure (9, 10, 11, 12, 13a, 13b, coll,
//	                          # lock, poll, rma, onready, faults, blame,
//	                          # hotspot)
//	figures -fig 9 -fig 13b   # a subset, in the order given
//	figures -all              # everything, in paper order
//	figures -all -quick       # reduced scale (seconds instead of minutes)
//	figures -scale            # paper-scale Figs. 9/10 plus the collectives
//	                          # sweep: strong scaling out to 256 nodes
//	                          # (2048 ranks/point) in minutes
//	figures -scale -json BENCH_host.json  # scale series with host times
//	figures -all -parallel 8  # at most 8 concurrent simulation points
//	figures -all -seq         # fully sequential (one point at a time)
//	figures -all -quick -json BENCH_figures.json
//	                          # machine-readable rows {fig, series, x, y,
//	                          # host_ms, modelled_ms, seed}
//	figures -list             # print the known figure ids
//	figures -all -quick -cpuprofile cpu.out -memprofile mem.out
//	                          # profile the run (inspect with go tool pprof)
//
// With -json-host=false the JSON omits measured host times, making two
// runs of the same sweep byte-identical — the CI determinism gate diffs
// exactly that.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/figures"
)

// figList collects repeated -fig flags, preserving the order given.
type figList []string

func (f *figList) String() string { return fmt.Sprint([]string(*f)) }

func (f *figList) Set(v string) error {
	*f = append(*f, v)
	return nil
}

func main() {
	var figs figList
	flag.Var(&figs, "fig", "figure id to regenerate (repeatable)")
	all := flag.Bool("all", false, "regenerate every figure")
	quick := flag.Bool("quick", false, "use the reduced Quick preset")
	scale := flag.Bool("scale", false,
		"paper-scale strong scaling: Figs. 9/10 out to 256 nodes plus the 64-node collectives sweep (default figure set: 9, 10, coll)")
	list := flag.Bool("list", false, "list the known figure ids and exit")
	parallel := flag.Int("parallel", 0, "max concurrent simulation points (0 = GOMAXPROCS)")
	seq := flag.Bool("seq", false, "run points sequentially (same as -parallel 1)")
	jsonOut := flag.String("json", "", "write machine-readable results to this file")
	jsonHost := flag.Bool("json-host", true,
		"include measured host times in -json rows (false: byte-stable output)")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			}
		}()
	}

	if *list {
		for _, id := range figures.IDs() {
			fmt.Println(id)
		}
		return
	}

	preset := figures.Full
	if *quick {
		preset = figures.Quick
	}
	if *scale {
		if *quick {
			fmt.Fprintln(os.Stderr, "figures: -scale and -quick are mutually exclusive")
			os.Exit(2)
		}
		preset = figures.Scale
	}
	gens := figures.All()
	var ids []string
	switch {
	case *scale && !*all && len(figs) == 0:
		// Only the Gauss–Seidel and collectives figures honour the Scale
		// preset.
		ids = []string{"9", "10", "coll"}
	case *all:
		ids = figures.IDs()
	case len(figs) > 0:
		for _, id := range figs {
			if _, ok := gens[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown figure %q; known: %v\n", id, figures.IDs())
				os.Exit(2)
			}
		}
		ids = figs
	default:
		flag.Usage()
		os.Exit(2)
	}

	workers := *parallel
	if *seq {
		workers = 1
	}

	// Every figure gets its own row sink (merged in paper order below) and
	// all figures share one point pool, so -parallel bounds the whole run
	// no matter how many figures are in flight.
	type output struct {
		fig  figures.Figure
		host time.Duration
		sink *exp.Sink
	}
	outs := make([]output, len(ids))
	pool := exp.NewPool(workers)
	run := func(i int) {
		o := figures.Opts{Preset: preset, Exec: exp.Options{Pool: pool}}
		if *jsonOut != "" {
			o.Sink = &exp.Sink{IncludeHost: *jsonHost}
			outs[i].sink = o.Sink
		}
		start := time.Now()
		outs[i].fig = gens[ids[i]](o)
		outs[i].host = time.Since(start)
	}

	total := time.Now()
	if workers == 1 {
		for i := range ids {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
		for i := range ids {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				run(i)
			}(i)
		}
		wg.Wait()
	}
	hostTotal := time.Since(total)

	for _, out := range outs {
		out.fig.Render(os.Stdout)
		fmt.Printf("   (host time: %v)\n\n", out.host.Round(time.Millisecond))
	}
	if len(ids) > 1 {
		fmt.Printf("total host time: %v (%d workers)\n",
			hostTotal.Round(time.Millisecond), pool.Workers())
	}

	if *jsonOut != "" {
		var rows []exp.Row
		for _, out := range outs {
			rows = append(rows, out.sink.Rows()...)
		}
		f, err := os.Create(*jsonOut)
		if err == nil {
			err = exp.WriteJSON(f, rows)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("json: %d rows written to %s\n", len(rows), *jsonOut)
	}
}
