// Producer-consumer: the iterative pattern of §IV-B, in both codifications
// the paper shows — the extra wait-ack task of Figure 5 and the onready
// clause of Figure 8.
//
// Rank 0 streams numbered chunks into rank 1's segment; because the
// receive buffer is reused every iteration, the producer must wait for the
// consumer's ack notification before overwriting it. The consumer sends
// the ack right after processing each chunk (the optimal placement).
//
//	go run ./examples/producer-consumer
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/memory"
	"repro/internal/tasking"
)

const (
	iterations = 5
	N          = 8 * memory.F64Bytes // one chunk: 8 float64s
	dataNotif  = 10
	ackNotif   = 20
)

// must fails fast on simulator API errors: in this example any error is a
// programming bug (bad offset, unknown segment, invalid queue).
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	fmt.Println("== Figure 5: extra wait-ack task ==")
	run(false)
	fmt.Println("== Figure 8: onready clause ==")
	run(true)
}

func run(useOnready bool) {
	cfg := cluster.Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 4,
		Profile:     fabric.ProfileIdeal(),
		RealTime:    true,
		WithTasking: true, WithTAGASPI: true,
	}
	cluster.Run(cfg, func(env *cluster.Env) {
		seg, err := env.GASPI.SegmentCreate(0, N)
		must(err)
		v, err := memory.F64View(seg, 0, 8)
		must(err)
		tg, rt := env.TAGASPI, env.RT
		switch env.Rank {
		case 0:
			var ack int64
			for i := 0; i < iterations; i++ {
				i := i
				if useOnready {
					// Figure 8: the ack wait rides on the writer task.
					rt.Submit(func(t *tasking.Task) {
						v.Fill(float64(i + 1))
						must(tg.WriteNotify(t, 0, 0, 1, 0, 0, N, dataNotif, int64(i+1), 0))
					}, tasking.WithDeps(tasking.In(seg, 0, N)),
						tasking.WithOnReady(func(t *tasking.Task) {
							tg.NotifyIwait(t, 0, ackNotif, nil)
						}),
						tasking.WithLabel("write data"))
				} else {
					// Figure 5: a dedicated task waits the ack first.
					rt.Submit(func(t *tasking.Task) {
						tg.NotifyIwait(t, 0, ackNotif, &ack)
					}, tasking.WithDeps(tasking.OutVal(&ack)), tasking.WithLabel("wait ack"))
					rt.Submit(func(t *tasking.Task) {
						v.Fill(float64(i + 1))
						must(tg.WriteNotify(t, 0, 0, 1, 0, 0, N, dataNotif, int64(i+1), 0))
					}, tasking.WithDeps(tasking.In(seg, 0, N), tasking.InVal(&ack)),
						tasking.WithLabel("write data"))
				}
				// The buffer is only reusable once the write completed
				// locally; the dependency system enforces it.
				rt.Submit(func(t *tasking.Task) { v.Fill(0) },
					tasking.WithDeps(tasking.InOut(seg, 0, N)), tasking.WithLabel("reuse"))
			}
		case 1:
			// Seed the first ack: the receive buffer starts out free.
			rt.Submit(func(t *tasking.Task) { must(tg.Notify(t, 0, 0, ackNotif, 1, 0)) })
			var got int64
			for i := 0; i < iterations; i++ {
				rt.Submit(func(t *tasking.Task) {
					tg.NotifyIwait(t, 0, dataNotif, &got)
				}, tasking.WithDeps(tasking.Out(seg, 0, N), tasking.OutVal(&got)),
					tasking.WithLabel("wait data"))
				last := i == iterations-1
				rt.Submit(func(t *tasking.Task) {
					fmt.Printf("  consumer: chunk %d = %v\n", got, v.At(0))
					if !last {
						// Ack right after consuming (§IV-B).
						must(tg.Notify(t, 0, 0, ackNotif, 1, 0))
					}
				}, tasking.WithDeps(tasking.InOut(seg, 0, N), tasking.InVal(&got)),
					tasking.WithLabel("process+ack"))
			}
		}
	})
}
