// RMA-notify: the §II-A / §III comparison of remote-completion
// notification idioms, run on the virtual clock so the modelled costs are
// visible:
//
//   - MPI one-sided: MPI_Put + MPI_Win_flush + an empty two-sided send
//     (the listing in §III). The flush costs a remote ack round-trip and
//     the notification is one more message.
//
//   - GASPI: gaspi_write_notify — the notification arrives right after
//     the data, no extra round-trip.
//
//     go run ./examples/rma-notify
package main

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/gaspisim"
)

func main() {
	const size = 4096
	const iters = 20
	var mpiLat, gaspiLat time.Duration

	cfg := cluster.Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 1,
		Profile: fabric.ProfileInfiniBand(),
	}
	cluster.Run(cfg, func(env *cluster.Env) {
		if _, err := env.GASPI.SegmentCreate(0, size); err != nil {
			panic(err)
		}
		winSeg, err := env.GASPI.SegmentCreate(1, size)
		if err != nil {
			panic(err)
		}
		win := env.MPI.WinCreate(winSeg)
		env.MPI.Barrier()
		clk := env.Clk
		switch env.Rank {
		case 0:
			buf := make([]byte, size)
			t0 := clk.Now()
			for i := 0; i < iters; i++ {
				env.MPI.Put(win, buf, 1, 0)
				env.MPI.Flush(win, 1)   // waits the remote-completion ack
				env.MPI.Send(nil, 1, 0) // "data has arrived" notification
				env.MPI.Recv(nil, 1, 1) // serialize iterations
			}
			mpiLat = (clk.Now() - t0) / iters
			t1 := clk.Now()
			for i := 0; i < iters; i++ {
				if err := env.GASPI.WriteNotify(0, 0, 1, 0, 0, size, 0, 1, 0, nil); err != nil {
					panic(err)
				}
				env.GASPI.Wait(0)
				env.GASPI.Drain(0)
				env.GASPI.NotifyWaitSome(0, 1, 1, gaspisim.Block) // ack
				env.GASPI.NotifyReset(0, 1)
			}
			gaspiLat = (clk.Now() - t1) / iters
		case 1:
			for i := 0; i < iters; i++ {
				env.MPI.Recv(nil, 0, 0)
				env.MPI.Send(nil, 0, 1)
			}
			for i := 0; i < iters; i++ {
				env.GASPI.NotifyWaitSome(0, 0, 1, gaspisim.Block)
				env.GASPI.NotifyReset(0, 0)
				if err := env.GASPI.Notify(0, 0, 1, 1, 0, nil); err != nil {
					panic(err)
				}
				env.GASPI.Wait(0)
				env.GASPI.Drain(0)
			}
		}
	})
	fmt.Printf("notified %d-byte transfer, modelled latency per round:\n", size)
	fmt.Printf("  MPI  put + flush + send : %v\n", mpiLat)
	fmt.Printf("  GASPI write_notify      : %v\n", gaspiLat)
	fmt.Printf("  ratio                   : %.2fx\n", float64(mpiLat)/float64(gaspiLat))
}
