// Quickstart: the smallest complete TAGASPI program.
//
// Two ranks run on the real clock (the library behaves as an ordinary
// concurrent Go library). Rank 0 writes a message into rank 1's segment
// with tagaspi_write_notify from inside a task; rank 1 waits for the
// notification asynchronously with tagaspi_notify_iwait and a successor
// task consumes the data — the Figure 3 / Figure 4 flow of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/tasking"
)

func main() {
	cfg := cluster.Config{
		Nodes: 2, RanksPerNode: 1, CoresPerRank: 4,
		Profile:     fabric.ProfileIdeal(),
		RealTime:    true,
		WithTasking: true, WithTAGASPI: true,
	}
	cluster.Run(cfg, func(env *cluster.Env) {
		const N = 64
		seg, err := env.GASPI.SegmentCreate(0, N)
		if err != nil {
			panic(err)
		}
		switch env.Rank {
		case 0:
			copy(seg.Bytes(), "hello from a one-sided task-aware write")
			// The writer task declares the source buffer as an input
			// dependency: TAGASPI releases it when the write completes
			// locally, so only successor tasks may reuse it.
			env.RT.Submit(func(t *tasking.Task) {
				err := env.TAGASPI.WriteNotify(t,
					0, 0, // local segment, offset
					1,       // destination rank
					0, 0, N, // remote segment, offset, size
					7, 1, // notification id and value
					0) // queue
				if err != nil {
					panic(err)
				}
				// seg cannot be reused here! (Figure 3)
			}, tasking.WithDeps(tasking.In(seg, 0, N)), tasking.WithLabel("write data"))
			env.RT.Submit(func(t *tasking.Task) {
				fmt.Println("rank 0: write completed locally, buffer reusable")
			}, tasking.WithDeps(tasking.InOut(seg, 0, N)), tasking.WithLabel("reuse"))
		case 1:
			var notified int64
			env.RT.Submit(func(t *tasking.Task) {
				env.TAGASPI.NotifyIwait(t, 0, 7, &notified)
				// The data is NOT here yet; only successors may read it.
			}, tasking.WithDeps(tasking.Out(seg, 0, N), tasking.OutVal(&notified)),
				tasking.WithLabel("wait data"))
			env.RT.Submit(func(t *tasking.Task) {
				fmt.Printf("rank 1: notified (value %d): %q\n",
					notified, string(seg.Bytes()[:40]))
			}, tasking.WithDeps(tasking.In(seg, 0, N), tasking.InVal(&notified)),
				tasking.WithLabel("process"))
		}
	})
}
