// Halo: a 1-D ring halo exchange over four ranks that mixes both
// task-aware libraries in the same application (§III: "these libraries are
// complementary and can be mixed in the same application") — one-sided
// TAGASPI writes for the halo data, two-sided TAMPI messages for a
// per-step reduction of the local residuals.
//
// Because the receiver does not participate in one-sided transfers, halo
// cells and notification ids are double-buffered by step parity, so a
// neighbour running one step ahead can never overwrite a value before it
// is consumed (the lightweight alternative to per-step acks for ring
// patterns).
//
//	go run ./examples/halo
package main

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/fabric"
	"repro/internal/memory"
	"repro/internal/tagaspi"
	"repro/internal/tasking"
)

const (
	ranks = 4
	cells = 16 // interior cells per rank
	steps = 4
)

// Segment layout (float64 slots):
//
//	[0..1]                 left halo, by step parity
//	[2..cells+1]           interior
//	[cells+2..cells+3]     right halo, by step parity
const (
	leftHalo  = 0
	interior  = 2
	rightHalo = cells + 2
	slots     = cells + 4
)

// must fails fast on simulator API errors: in this example any error is a
// programming bug (bad offset, unknown segment, invalid queue).
func must(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	cfg := cluster.Config{
		Nodes: ranks, RanksPerNode: 1, CoresPerRank: 4,
		Profile:     fabric.ProfileIdeal(),
		RealTime:    true,
		WithTasking: true, WithTAMPI: true, WithTAGASPI: true,
	}
	cluster.Run(cfg, func(env *cluster.Env) {
		seg, err := env.GASPI.SegmentCreate(0, slots*memory.F64Bytes)
		must(err)
		v, err := memory.F64View(seg, 0, slots)
		must(err)
		me := int(env.Rank)
		left := (me - 1 + ranks) % ranks
		right := (me + 1) % ranks
		for i := 0; i < cells; i++ {
			v.Set(interior+i, float64(me))
		}
		// Initial halos (parity 0) are the neighbours' initial values.
		v.Set(leftHalo, float64(left))
		v.Set(rightHalo, float64(right))
		rt, tg, ta := env.RT, env.TAGASPI, env.TAMPI
		off := func(slot int) int { return slot * memory.F64Bytes }

		residual := make([]byte, 8)
		for s := 0; s < steps; s++ {
			s := s
			par := s % 2
			nextPar := (s + 1) % 2

			var fromLeft, fromRight int64
			if s > 0 {
				// Wait for this step's halo values (parity ids 0/1 left,
				// 2/3 right).
				rt.Submit(func(t *tasking.Task) {
					tg.NotifyIwait(t, 0, tagaspi.NotificationID(par), &fromLeft)
					tg.NotifyIwait(t, 0, tagaspi.NotificationID(2+par), &fromRight)
				}, tasking.WithDeps(
					tasking.Out(seg, leftHalo+par, leftHalo+par+1),
					tasking.Out(seg, rightHalo+par, rightHalo+par+1),
					tasking.OutVal(&fromLeft)),
					tasking.WithLabel("halo wait"))
			}

			// Jacobi smoothing over the interior, reading this parity's
			// halos; also produces the local residual.
			rt.Submit(func(t *tasking.Task) {
				old := v.CopyOut(0, slots)
				at := func(i int) float64 { // logical cell -1..cells
					switch {
					case i < 0:
						return old[leftHalo+par]
					case i >= cells:
						return old[rightHalo+par]
					default:
						return old[interior+i]
					}
				}
				r := 0.0
				for i := 0; i < cells; i++ {
					x := (at(i-1) + at(i) + at(i+1)) / 3
					v.Set(interior+i, x)
					r += math.Abs(x - at(i))
				}
				memory.F64Of(residual).Set(0, r)
			}, tasking.WithDeps(
				tasking.InOut(seg, interior, interior+cells),
				tasking.In(seg, leftHalo+par, leftHalo+par+1),
				tasking.In(seg, rightHalo+par, rightHalo+par+1),
				tasking.InVal(&fromLeft),
				tasking.OutVal(&residual[0])),
				tasking.WithLabel("smooth"))

			// One-sided writes of the next step's halos into the
			// neighbours' opposite-parity slots.
			if s < steps-1 {
				rt.Submit(func(t *tasking.Task) {
					// My first cell -> left neighbour's right halo.
					must(tg.WriteNotify(t, 0, off(interior), fabric.Rank(left),
						0, off(rightHalo+nextPar), memory.F64Bytes,
						tagaspi.NotificationID(2+nextPar), int64(s+1), 0))
					// My last cell -> right neighbour's left halo.
					must(tg.WriteNotify(t, 0, off(interior+cells-1), fabric.Rank(right),
						0, off(leftHalo+nextPar), memory.F64Bytes,
						tagaspi.NotificationID(nextPar), int64(s+1), 1))
				}, tasking.WithDeps(tasking.In(seg, interior, interior+cells)),
					tasking.WithLabel("halo write"))
			}

			// Two-sided TAMPI: reduce the residuals on rank 0.
			rt.Submit(func(t *tasking.Task) {
				ta.Iwait(t, env.MPI.Isend(residual, 0, 100+s))
			}, tasking.WithDeps(tasking.InVal(&residual[0])), tasking.WithLabel("send residual"))
			if me == 0 {
				acc := new(float64)
				for r := 0; r < ranks; r++ {
					buf := make([]byte, 8)
					rt.Submit(func(t *tasking.Task) {
						ta.Iwait(t, env.MPI.Irecv(buf, fabric.Rank(r), 100+s))
					}, tasking.WithDeps(tasking.Out(&buf[0], 0, 8)),
						tasking.WithLabel("recv residual"))
					rt.Submit(func(t *tasking.Task) {
						*acc += memory.F64Of(buf).At(0)
					}, tasking.WithDeps(tasking.In(&buf[0], 0, 8), tasking.InOutVal(acc)),
						tasking.WithLabel("reduce"))
				}
				rt.Submit(func(t *tasking.Task) {
					fmt.Printf("step %d: global residual %.4f\n", s, *acc)
					*acc = 0
				}, tasking.WithDeps(tasking.InOutVal(acc)), tasking.WithLabel("report"))
			}
		}
		rt.TaskWait()
		if me == 0 {
			fmt.Printf("final interior of rank 0: %.3f ... %.3f\n",
				v.At(interior), v.At(interior+cells-1))
		}
	})
}
