#!/usr/bin/env sh
# Tier-1 verification gate. Run from anywhere; it cds to the repo root.
#
#   ./scripts/ci.sh          # full gate
#   CI_SHORT=1 ./scripts/ci.sh   # skip the -race pass (fast local check)
#
# The gate is: build everything, run the standard vet analyzers, run the
# repository's own invariant analyzers (tagalint), then the test suite
# under the race detector, then a smoke check that an instrumented run
# produces a valid trace. The simulator is heavily concurrent (one
# goroutine per rank main plus one per running task), so -race is part of
# the gate, not an optional extra — see EXPERIMENTS.md.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go run ./cmd/tagalint ./..."
go run ./cmd/tagalint ./...

if [ "${CI_SHORT:-0}" = "1" ]; then
    echo "== go test ./... (CI_SHORT=1: race detector skipped)"
    go test ./...
else
    echo "== go test -race ./..."
    go test -race ./...
fi

# Observability smoke: an instrumented run must produce a trace that the
# trace inspector accepts (README "Observability", DESIGN.md §7).
echo "== trace smoke: instrumented cmd/heat run + cmd/trace -check"
trace_tmp="$(mktemp -t heat-trace.XXXXXX.json)"
trap 'rm -f "$trace_tmp"' EXIT
go run ./cmd/heat -variant tagaspi -nodes 2 -rpn 1 -cores 2 \
    -rows 128 -cols 256 -steps 2 -block 64 \
    -trace "$trace_tmp" -metrics > /dev/null
go run ./cmd/trace -check "$trace_tmp"

echo "ci: OK"
