#!/usr/bin/env sh
# Tier-1 verification gate. Run from anywhere; it cds to the repo root.
#
#   ./scripts/ci.sh          # full gate
#   CI_SHORT=1 ./scripts/ci.sh   # skip the -race pass (fast local check)
#
# The gate is: build everything, run the standard vet analyzers, run the
# repository's own invariant analyzers (tagalint), then the test suite
# under the race detector. The simulator is heavily concurrent (one
# goroutine per rank main plus one per running task), so -race is part of
# the gate, not an optional extra — see EXPERIMENTS.md.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go run ./cmd/tagalint ./..."
go run ./cmd/tagalint ./...

if [ "${CI_SHORT:-0}" = "1" ]; then
    echo "== go test ./... (CI_SHORT=1: race detector skipped)"
    go test ./...
else
    echo "== go test -race ./..."
    go test -race ./...
fi

echo "ci: OK"
