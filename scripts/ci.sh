#!/usr/bin/env sh
# Tier-1 verification gate. Run from anywhere; it cds to the repo root.
#
#   ./scripts/ci.sh          # full gate
#   CI_SHORT=1 ./scripts/ci.sh   # skip the -race pass (fast local check)
#
# The gate is: build everything, run the standard vet analyzers, run the
# repository's own invariant analyzers (tagalint), then the test suite
# under the race detector, then a smoke check that an instrumented run
# produces a valid trace. The simulator is heavily concurrent (one
# goroutine per rank main plus one per running task), so -race is part of
# the gate, not an optional extra — see EXPERIMENTS.md.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

# tagalint: the repository's own analyzers. CI fails on findings AND on
# stale //lint:ignore directives (a suppression that silences nothing is
# misleading documentation); the SARIF report is left as an artifact for
# code-scanning ingestion.
sarif_out="${CI_ARTIFACT_DIR:-/tmp}/tagalint.sarif"
echo "== go run ./cmd/tagalint -stale-ignores=error -sarif $sarif_out ./..."
go run ./cmd/tagalint -stale-ignores=error -sarif "$sarif_out" ./...

if [ "${CI_SHORT:-0}" = "1" ]; then
    echo "== go test ./... (CI_SHORT=1: race detector skipped)"
    go test ./...
else
    echo "== go test -race ./..."
    go test -race ./...
fi

# Allocation-regression gates: the courier send path must stay within its
# committed per-message budget (internal/fabric.CourierAllocBudget) and a
# nil-Recorder instrumentation site must allocate nothing. Run without
# -race on purpose — race instrumentation inflates allocation counts, so
# the gates skip themselves under the race build.
echo "== allocation-regression gates: courier budget (plain + flow-stamped + multi-hop) + nil-Recorder zero-alloc"
go test -run 'TestCourierAllocBudget|TestCourierAllocBudgetInstrumented|TestCourierAllocBudgetMultiHop' ./internal/fabric
go test -run 'TestNilRecorderZeroAlloc|TestNilHalvesCollectorZeroAlloc' ./internal/obs

# Host-time regression gate at scale: one paper-scale Gauss-Seidel point
# (the Fig. 9 Scale-preset TAGASPI run, 256 nodes / 512 hybrid ranks)
# must stay inside the committed per-message host-time budget
# (internal/figures.HostNsPerMessageBudget) and a goroutine budget linear
# in ranks — the wall-clock analogue of the alloc gate, also run without
# -race. The committed BENCH_host.json carries the matching
# "9-scale"/"10-scale" series (regenerate: go run ./cmd/figures -scale
# -json, then splice the rows; see EXPERIMENTS.md "Scaling past the
# paper").
echo "== host-time regression gate: per-message budget at the 256-node scale point + the multi-hop incast point"
go test -run 'TestPerMessageHostBudget|TestMultiHopHostBudget' ./internal/figures
grep -q '"fig":"9-scale"' BENCH_host.json
grep -q '"fig":"10-scale"' BENCH_host.json
grep -q '"fig":"coll-scale"' BENCH_host.json
grep -q '"fig":"9-scale","series":"TAGASPI","x":256' BENCH_host.json
grep -q '"fig":"coll-scale","series":"TAGASPI task-aware","x":64' BENCH_host.json

# Bench smoke: the host-time benchmarks must run, and a quick figure run
# with host times included must produce a valid BENCH_host.json-shaped
# document (written to a temp path; the committed BENCH_host.json is the
# curated full-quick baseline).
echo "== bench smoke: courier benchmark + host-time JSON document"
go test -run '^$' -bench 'BenchmarkCourierDelivery' -benchtime 100x .
bench_json="$(mktemp -t bench-host.XXXXXX.json)"
go run ./cmd/figures -fig 9 -quick -json "$bench_json" > /dev/null
grep -q '"schema": "bench_figures/v1"' "$bench_json"
grep -q '"host_ms":' "$bench_json"
rm -f "$bench_json"

# Experiment-engine determinism gate: two host-parallel regenerations of
# the full Quick figure set must serialize to byte-identical JSON (host
# times excluded — they are the only nondeterministic field; see
# DESIGN.md §8). Seeds derive from point ids, so no point's modelled
# results may depend on worker count or execution order.
echo "== figures determinism gate: two -parallel runs, byte-identical JSON"
fig_a="$(mktemp -t figures-a.XXXXXX.json)"
fig_b="$(mktemp -t figures-b.XXXXXX.json)"
trap 'rm -f "$fig_a" "$fig_b"' EXIT
go run ./cmd/figures -all -quick -parallel 4 -json "$fig_a" -json-host=false > /dev/null
go run ./cmd/figures -all -quick -parallel 4 -json "$fig_b" -json-host=false > /dev/null
cmp "$fig_a" "$fig_b"

# Collectives determinism gate (DESIGN.md §12): two seeded instrumented
# regenerations of the collectives figure — ring allreduce over the
# blocking-MPI, blocking-GASPI and task-aware backends, with critical-path
# blame shares — must serialize byte-identically. Ring staging parities,
# notification ids, reserved tags and flow-edge ids are all deterministic
# functions of the collective epoch, so no backend may introduce
# host-order dependence.
echo "== collectives determinism gate: two seeded runs, byte-identical JSON"
coll_a="$(mktemp -t figures-coll-a.XXXXXX.json)"
coll_b="$(mktemp -t figures-coll-b.XXXXXX.json)"
trap 'rm -f "$fig_a" "$fig_b" "$coll_a" "$coll_b"' EXIT
go run ./cmd/figures -fig coll -quick -parallel 4 -json "$coll_a" -json-host=false > /dev/null
go run ./cmd/figures -fig coll -quick -parallel 4 -json "$coll_b" -json-host=false > /dev/null
cmp "$coll_a" "$coll_b"

# Hotspot determinism gate (DESIGN.md §13): two regenerations of the
# shaped-topology incast figure — multi-hop routes over shared per-link
# capacity on the mesh and the fat-tree, all three messaging variants —
# must serialize byte-identically. Routes are pure functions of the
# topology and link service is arrival-ordered in virtual time, so
# emergent congestion may not depend on host scheduling.
echo "== hotspot determinism gate: two shaped-topology incast runs, byte-identical JSON"
hs_a="$(mktemp -t figures-hs-a.XXXXXX.json)"
hs_b="$(mktemp -t figures-hs-b.XXXXXX.json)"
trap 'rm -f "$fig_a" "$fig_b" "$coll_a" "$coll_b" "$hs_a" "$hs_b"' EXIT
go run ./cmd/figures -fig hotspot -quick -parallel 4 -json "$hs_a" -json-host=false > /dev/null
go run ./cmd/figures -fig hotspot -quick -parallel 4 -json "$hs_b" -json-host=false > /dev/null
cmp "$hs_a" "$hs_b"
grep -q '"fig":"hotspot","series":"mesh MPI-Only"' "$hs_a"
grep -q '"fig":"hotspot","series":"fattree TAGASPI"' "$hs_a"

# Fault-determinism gate: the fault plane draws every decision from
# seeded per-path streams in virtual time (DESIGN.md §9), so two seeded
# -faults runs must produce byte-identical host-time-free output. A -race
# pass additionally drives a two-rank cluster through a hard link outage
# and TAGASPI's repair-and-retry recovery.
echo "== fault determinism gate: two seeded -faults runs, byte-identical output"
go build -o /tmp/ci-heat-bin ./cmd/heat
fault_a="$(mktemp -t heat-faults-a.XXXXXX.txt)"
fault_b="$(mktemp -t heat-faults-b.XXXXXX.txt)"
trap 'rm -f "$fig_a" "$fig_b" "$coll_a" "$coll_b" "$hs_a" "$hs_b" "$fault_a" "$fault_b"' EXIT
/tmp/ci-heat-bin -variant tagaspi -nodes 2 -rows 256 -cols 256 -steps 4 \
    -faults 0.05 -host=false > "$fault_a"
/tmp/ci-heat-bin -variant tagaspi -nodes 2 -rows 256 -cols 256 -steps 4 \
    -faults 0.05 -host=false > "$fault_b"
cmp "$fault_a" "$fault_b"
grep -q "tagaspi retries" "$fault_a"

echo "== fault recovery under -race: link outage and repair"
go test -race -run TestLinkOutageRecovery ./internal/cluster

# Observability smoke: instrumented runs must produce traces the trace
# inspector accepts (README "Observability", DESIGN.md §7) — including
# when two instrumented simulations run concurrently, the execution shape
# of the host-parallel experiment engine.
echo "== trace smoke: concurrent instrumented cmd/heat runs + cmd/trace -check"
trace_tmp="$(mktemp -t heat-trace.XXXXXX.json)"
trace_tmp2="$(mktemp -t heat-trace2.XXXXXX.json)"
trap 'rm -f "$fig_a" "$fig_b" "$coll_a" "$coll_b" "$hs_a" "$hs_b" "$fault_a" "$fault_b" "$trace_tmp" "$trace_tmp2"' EXIT
/tmp/ci-heat-bin -variant tagaspi -nodes 2 -rpn 1 -cores 2 \
    -rows 128 -cols 256 -steps 2 -block 64 \
    -trace "$trace_tmp" -metrics > /dev/null &
heat_pid=$!
/tmp/ci-heat-bin -variant tampi -nodes 2 -rpn 1 -cores 2 \
    -rows 128 -cols 256 -steps 2 -block 64 \
    -trace "$trace_tmp2" -metrics > /dev/null
wait "$heat_pid"
go run ./cmd/trace -check "$trace_tmp"
go run ./cmd/trace -check "$trace_tmp2"

# Critical-path blame gate (DESIGN.md §10): two identical seeded
# instrumented runs must produce byte-identical -blame reports (the
# causal-flow ids, the happens-before walk and the report serialization
# are all deterministic functions of modelled state), and the report from
# the recorded trace file must agree with the in-process one: cmd/trace
# -blame re-derives it from the serialized events alone.
echo "== blame determinism gate: two seeded instrumented runs, byte-identical reports"
blame_a="$(mktemp -t heat-blame-a.XXXXXX.txt)"
blame_b="$(mktemp -t heat-blame-b.XXXXXX.txt)"
blame_t="$(mktemp -t heat-blame-t.XXXXXX.txt)"
trap 'rm -f "$fig_a" "$fig_b" "$coll_a" "$coll_b" "$hs_a" "$hs_b" "$fault_a" "$fault_b" "$trace_tmp" "$trace_tmp2" "$blame_a" "$blame_b" "$blame_t"' EXIT
/tmp/ci-heat-bin -variant tagaspi -nodes 2 -rpn 1 -cores 2 \
    -rows 128 -cols 256 -steps 2 -block 64 -host=false \
    -blame "$blame_a" > /dev/null
/tmp/ci-heat-bin -variant tagaspi -nodes 2 -rpn 1 -cores 2 \
    -rows 128 -cols 256 -steps 2 -block 64 -host=false \
    -trace "$trace_tmp" -blame "$blame_b" > /dev/null
cmp "$blame_a" "$blame_b"
grep -q "attributed 100.00% of makespan" "$blame_a"
go run ./cmd/trace -blame "$trace_tmp" > "$blame_t"
cmp "$blame_a" "$blame_t"

echo "ci: OK"
